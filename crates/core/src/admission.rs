//! Admission control for the mapping service: bounded queues, priority
//! classes, a quality ladder, and a circuit breaker.
//!
//! A mapping service under overload has three defenses, applied in order:
//!
//! 1. **Backpressure** — the admission queue is bounded; requests beyond
//!    capacity are rejected with [`TryMapError::QueueFull`] instead of
//!    queueing without limit (the caller retries, redirects, or drops).
//! 2. **Load shedding down a quality ladder** — admitted requests are
//!    served at a [`QualityLevel`] chosen from the current queue depth
//!    and the request's [`Priority`]: the full CME + η-minimization
//!    pipeline when lightly loaded, a memo-cache-only lookup under
//!    pressure, and the O(sets) round-robin-with-locality heuristic when
//!    saturated — mirroring the verifier-gated degradation ladder the
//!    resilience controller uses for faults.
//! 3. **A circuit breaker** — when the expensive path repeatedly blows
//!    its budget ([`LocmapError::DeadlineExceeded`]), the breaker trips
//!    [`BreakerState::Open`] and requests bypass straight to the cheap
//!    rungs; after a cool-down it goes [`BreakerState::HalfOpen`] and
//!    probes the expensive path, closing again only after consecutive
//!    successes. All breaker clocks are *observation counts*, not wall
//!    time, so its state machine is deterministic and unit-testable.
//!
//! The types here are pure data structures (no threads); a
//! [`crate::MappingSession`] embeds them behind a mutex, and
//! `bench::overload` drives them open-loop to measure goodput, shed
//! rate and tail latency.

use locmap_noc::LocmapError;
use std::collections::VecDeque;
use std::fmt;

/// Priority class of an admitted request. Higher classes are dequeued
/// first and ride the quality ladder further before being degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Shed first: background / speculative work.
    Low,
    /// The default class.
    Normal,
    /// Shed last: latency-critical foreground work.
    High,
}

impl Priority {
    /// All classes, highest first (dequeue order).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::Low => write!(f, "low"),
            Priority::Normal => write!(f, "normal"),
            Priority::High => write!(f, "high"),
        }
    }
}

/// The rung of the quality ladder a request was served at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QualityLevel {
    /// Round-robin-with-locality heuristic: O(sets), no analysis.
    Heuristic,
    /// Memo-cache lookup only; falls to [`QualityLevel::Heuristic`] on a
    /// miss.
    Cached,
    /// The full CME + affinity + η-minimization pipeline.
    Full,
}

impl fmt::Display for QualityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QualityLevel::Heuristic => write!(f, "heuristic"),
            QualityLevel::Cached => write!(f, "cached"),
            QualityLevel::Full => write!(f, "full"),
        }
    }
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TryMapError {
    /// The bounded admission queue is at capacity; the request was shed
    /// *before* any mapping work was spent on it.
    QueueFull {
        /// Requests in flight when the rejection happened.
        depth: usize,
        /// The configured bound.
        capacity: usize,
    },
    /// The request's wall deadline had already expired at admission; no
    /// mapping work was spent on a result nobody can use.
    DeadlineExpired,
    /// Mapping itself failed with a typed error (cancellation, invalid
    /// configuration, ...).
    Mapping(LocmapError),
}

impl fmt::Display for TryMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryMapError::QueueFull { depth, capacity } => {
                write!(f, "admission queue full ({depth}/{capacity} in flight)")
            }
            TryMapError::DeadlineExpired => {
                write!(f, "request deadline expired before admission")
            }
            TryMapError::Mapping(e) => write!(f, "mapping failed: {e}"),
        }
    }
}

impl std::error::Error for TryMapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TryMapError::Mapping(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LocmapError> for TryMapError {
    fn from(e: LocmapError) -> Self {
        TryMapError::Mapping(e)
    }
}

/// Tunables of the admission layer (see the module docs for the overall
/// scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Hard bound on requests in flight; beyond it,
    /// [`TryMapError::QueueFull`].
    pub capacity: usize,
    /// Depth up to which a [`Priority::Normal`] request is served
    /// [`QualityLevel::Full`].
    pub degrade_depth: usize,
    /// Depth up to which a [`Priority::Normal`] request is served at
    /// least [`QualityLevel::Cached`]; beyond it, straight to the
    /// heuristic.
    pub heuristic_depth: usize,
    /// Circuit-breaker tuning for the expensive path.
    pub breaker: BreakerConfig,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity: 64,
            degrade_depth: 8,
            heuristic_depth: 24,
            breaker: BreakerConfig::default(),
        }
    }
}

impl AdmissionConfig {
    /// The [`QualityLevel`] for a request of `priority` admitted at queue
    /// depth `depth` (1 = the request is alone).
    ///
    /// [`Priority::High`] tolerates twice the configured depths before
    /// degrading; [`Priority::Low`] only half — so under one load, the
    /// classes shed quality in order.
    pub fn quality_for(&self, depth: usize, priority: Priority) -> QualityLevel {
        let (degrade, heuristic) = match priority {
            Priority::High => (self.degrade_depth * 2, self.heuristic_depth * 2),
            Priority::Normal => (self.degrade_depth, self.heuristic_depth),
            Priority::Low => (self.degrade_depth / 2, self.heuristic_depth / 2),
        };
        if depth <= degrade.max(1) {
            QualityLevel::Full
        } else if depth <= heuristic.max(1) {
            QualityLevel::Cached
        } else {
            QualityLevel::Heuristic
        }
    }
}

/// A bounded multi-class FIFO: one queue per [`Priority`], dequeued
/// highest class first, FIFO within a class, with one shared capacity so
/// a flood of low-priority work still backpressures instead of starving
/// memory.
#[derive(Debug, Clone)]
pub struct AdmissionQueue<T> {
    classes: [VecDeque<T>; 3],
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue holding at most `capacity` items across all
    /// classes (`capacity` 0 is clamped to 1 — a queue that can hold
    /// nothing would shed everything).
    pub fn bounded(capacity: usize) -> Self {
        AdmissionQueue {
            classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, or rejects it with [`TryMapError::QueueFull`]
    /// when the shared bound is reached.
    pub fn try_push(&mut self, priority: Priority, item: T) -> Result<(), TryMapError> {
        let depth = self.len();
        if depth >= self.capacity {
            return Err(TryMapError::QueueFull { depth, capacity: self.capacity });
        }
        self.classes[priority.index()].push_back(item);
        Ok(())
    }

    /// Dequeues the oldest item of the highest non-empty class.
    pub fn pop(&mut self) -> Option<(Priority, T)> {
        for p in Priority::ALL {
            if let Some(item) = self.classes[p.index()].pop_front() {
                return Some((p, item));
            }
        }
        None
    }

    /// Items queued across all classes.
    pub fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.classes.iter().all(VecDeque::is_empty)
    }

    /// The shared capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Circuit-breaker tuning. All windows count *observations* (requests
/// that consulted the breaker), not wall time, so the state machine is
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Budget blows within [`BreakerConfig::strike_window`] that trip the
    /// breaker open.
    pub strike_threshold: u32,
    /// Sliding window (in observations) strikes are counted over.
    pub strike_window: u64,
    /// Observations the breaker stays open before probing
    /// ([`BreakerState::HalfOpen`]).
    pub cooldown: u64,
    /// Consecutive half-open successes required to close again.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { strike_threshold: 3, strike_window: 16, cooldown: 8, half_open_probes: 2 }
    }
}

/// The breaker's position (standard three-state circuit breaker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Expensive path allowed; strikes are being counted.
    Closed,
    /// Expensive path bypassed; cooling down.
    Open,
    /// Probing: expensive path allowed, watched closely — one failure
    /// reopens, [`BreakerConfig::half_open_probes`] successes close.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// A deterministic circuit breaker around the expensive mapping path.
///
/// The same strike-window idea as
/// [`crate::resilience::RetryPolicy`]-driven fault quarantine: repeated
/// recent failures mean the path is *currently* hopeless, so stop paying
/// for it; periodically probe to notice recovery.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Observation counter: the breaker's deterministic clock.
    now: u64,
    /// Observation stamps of recent failures (Closed state only).
    strikes: VecDeque<u64>,
    /// When the breaker last tripped open.
    opened_at: u64,
    /// Consecutive successful probes while half-open.
    probe_successes: u32,
}

impl CircuitBreaker {
    /// A closed breaker with tuning `cfg`.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            now: 0,
            strikes: VecDeque::new(),
            opened_at: 0,
            probe_successes: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// One observation: may this request take the expensive path?
    ///
    /// Advances the deterministic clock; while open, the cool-down is
    /// measured in these calls, so a breaker only un-trips under traffic
    /// (exactly when probing is meaningful).
    pub fn admit_expensive(&mut self) -> bool {
        self.now += 1;
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if self.now.saturating_sub(self.opened_at) >= self.cfg.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probe_successes = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The admitted expensive request finished within budget.
    pub fn record_success(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probe_successes += 1;
            if self.probe_successes >= self.cfg.half_open_probes {
                self.state = BreakerState::Closed;
                self.strikes.clear();
            }
        }
    }

    /// The admitted expensive request blew its budget.
    pub fn record_failure(&mut self) {
        match self.state {
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Closed => {
                self.strikes.push_back(self.now);
                while let Some(&t) = self.strikes.front() {
                    if self.now.saturating_sub(t) >= self.cfg.strike_window {
                        self.strikes.pop_front();
                    } else {
                        break;
                    }
                }
                if self.strikes.len() >= self.cfg.strike_threshold as usize {
                    self.trip();
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.opened_at = self.now;
        self.strikes.clear();
        self.probe_successes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_class_then_fifo() {
        let mut q = AdmissionQueue::bounded(8);
        q.try_push(Priority::Low, "l1").unwrap();
        q.try_push(Priority::Normal, "n1").unwrap();
        q.try_push(Priority::High, "h1").unwrap();
        q.try_push(Priority::Normal, "n2").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, x)| x)).collect();
        assert_eq!(order, ["h1", "n1", "n2", "l1"]);
    }

    #[test]
    fn queue_backpressures_at_shared_capacity() {
        let mut q = AdmissionQueue::bounded(2);
        q.try_push(Priority::Low, 1).unwrap();
        q.try_push(Priority::High, 2).unwrap();
        let err = q.try_push(Priority::High, 3).unwrap_err();
        assert_eq!(err, TryMapError::QueueFull { depth: 2, capacity: 2 });
        // Draining frees the bound.
        assert_eq!(q.pop(), Some((Priority::High, 2)));
        q.try_push(Priority::Normal, 4).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn quality_degrades_with_depth_and_priority() {
        let cfg = AdmissionConfig::default();
        assert_eq!(cfg.quality_for(1, Priority::Normal), QualityLevel::Full);
        assert_eq!(cfg.quality_for(cfg.degrade_depth + 1, Priority::Normal), QualityLevel::Cached);
        assert_eq!(
            cfg.quality_for(cfg.heuristic_depth + 1, Priority::Normal),
            QualityLevel::Heuristic
        );
        // At the same depth, higher priority keeps higher quality.
        let d = cfg.degrade_depth + 1;
        assert_eq!(cfg.quality_for(d, Priority::High), QualityLevel::Full);
        assert_eq!(cfg.quality_for(d, Priority::Low), QualityLevel::Cached);
        assert!(cfg.quality_for(3 * cfg.heuristic_depth, Priority::High) == QualityLevel::Heuristic);
    }

    #[test]
    fn breaker_trips_after_strikes_in_window() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        for _ in 0..3 {
            assert!(b.admit_expensive());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit_expensive(), "open breaker bypasses the expensive path");
    }

    #[test]
    fn old_strikes_age_out_of_the_window() {
        let cfg = BreakerConfig { strike_threshold: 3, strike_window: 4, ..Default::default() };
        let mut b = CircuitBreaker::new(cfg);
        // Two strikes, then enough successes to age them past the window.
        for _ in 0..2 {
            assert!(b.admit_expensive());
            b.record_failure();
        }
        for _ in 0..6 {
            assert!(b.admit_expensive());
            b.record_success();
        }
        assert!(b.admit_expensive());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "stale strikes must not count");
    }

    #[test]
    fn breaker_recovers_through_half_open_probes() {
        let cfg = BreakerConfig::default();
        let mut b = CircuitBreaker::new(cfg);
        for _ in 0..cfg.strike_threshold {
            b.admit_expensive();
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Cool down under traffic.
        for _ in 0..cfg.cooldown - 1 {
            assert!(!b.admit_expensive());
        }
        assert!(b.admit_expensive(), "cooled-down breaker probes");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert!(b.admit_expensive());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed, "enough probes close the breaker");
    }

    #[test]
    fn half_open_failure_reopens() {
        let cfg = BreakerConfig::default();
        let mut b = CircuitBreaker::new(cfg);
        for _ in 0..cfg.strike_threshold {
            b.admit_expensive();
            b.record_failure();
        }
        for _ in 0..cfg.cooldown {
            b.admit_expensive();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "failed probe reopens");
        assert!(!b.admit_expensive());
    }

    #[test]
    fn errors_format_usefully() {
        let e = TryMapError::QueueFull { depth: 64, capacity: 64 };
        assert!(e.to_string().contains("64/64"));
        assert!(TryMapError::DeadlineExpired.to_string().contains("deadline"));
        let e = TryMapError::from(LocmapError::Cancelled { completed: 1, total: 2 });
        assert!(e.to_string().contains("cancelled"));
    }
}
