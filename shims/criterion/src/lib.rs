//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Runs each benchmark for a fixed number of timed iterations with
//! `std::time::Instant` and prints mean wall-clock time per iteration
//! (plus throughput when declared). No statistics, warm-up tuning, or
//! HTML reports — just enough to keep `cargo bench` and the
//! `--benches` compile targets working without registry access.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-per-iteration declaration used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// How much setup output to batch per timing run in
/// [`Bencher::iter_batched`]. All variants behave identically here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

const DEFAULT_ITERS: u64 = 10;

fn run_one(label: &str, iters: u64, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / per_iter / 1e6)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("bench {label:<50} {:>12.3} ms/iter{rate}", per_iter * 1e3);
}

/// Top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: DEFAULT_ITERS }
    }
}

impl Criterion {
    /// Ignored configuration hook kept for API compatibility.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 100);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: self.iters,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into(), self.iters, None, &mut f);
        self
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the timed iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 100);
        self
    }

    /// Declares per-iteration work so a rate is reported.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.iters, self.throughput, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark entry function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
