//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types but
//! never actually serializes anything (there is no `serde_json` consumer),
//! so the derives can legally expand to nothing. Keeping the attribute
//! surface (`#[serde(...)]`) registered means real serde can be swapped
//! back in without touching any call site.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
