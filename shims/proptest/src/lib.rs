//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Differences from real proptest, by design:
//! - Cases are drawn from a generator seeded by a hash of the test name,
//!   so every run explores the same inputs (no wall-clock entropy, no
//!   persisted failure files). That makes property tests bit-for-bit
//!   reproducible, which the fault-plan determinism properties rely on.
//! - No shrinking: a failing case reports its inputs via the assert
//!   message but is not minimized.
//!
//! Supported surface: `Strategy` + `prop_map`, numeric range strategies,
//! 2/3-tuples of strategies, `proptest::collection::vec`, the `proptest!`
//! macro, and `prop_assert!`/`prop_assert_eq!`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Number of cases each `proptest!` test executes.
pub const CASES: u64 = 64;

/// Deterministic case generator handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeds the generator from a test-name hash and case index; same
    /// inputs always yield the same case.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name keeps distinct tests on distinct streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.new_value(rng), self.1.new_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.new_value(rng),
            self.1.new_value(rng),
            self.2.new_value(rng),
        )
    }
}

/// Length specification accepted by [`collection::vec`].
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.0.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Strategy, TestRng, CASES};
}

/// Defines deterministic property tests. Each `fn` becomes a `#[test]`
/// that runs [`CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::new_value(&$strat, &mut rng);
                    )+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn generated_values_in_range(x in 3u16..=9, y in 0.0f64..1.0) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u64..100, 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(v.iter().all(|&e| e < 100));
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let strat = collection::vec(0u64..1_000_000, 5..50);
        for case in 0..10 {
            let a = strat.new_value(&mut TestRng::for_case("t", case));
            let b = strat.new_value(&mut TestRng::for_case("t", case));
            assert_eq!(a, b);
        }
    }
}
