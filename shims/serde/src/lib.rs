//! Offline stand-in for the `serde` facade.
//!
//! The container this workspace builds in has no registry access, so the
//! real `serde` cannot be fetched. The codebase only ever *derives*
//! `Serialize`/`Deserialize` (nothing serializes at runtime), so this shim
//! re-exports no-op derive macros under the same names. `use
//! serde::{Deserialize, Serialize}` and `#[derive(serde::Serialize)]`
//! both resolve exactly as they would against real serde.

pub use serde_derive::{Deserialize, Serialize};
