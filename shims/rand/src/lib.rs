//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! `SmallRng::seed_from_u64`, `Rng::gen::<f64>()`, `Rng::gen_range` over
//! half-open and inclusive integer/float ranges, and `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand` uses for `SmallRng` on 64-bit targets — so
//! streams are deterministic per seed and of good statistical quality.
//! Sequences are NOT bit-identical to upstream `rand`; nothing in the
//! workspace depends on the exact stream, only on per-seed determinism.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`. Panics on an empty range, matching
    /// `rand`'s contract.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// Concrete small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 — deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept so `rngs::StdRng` call sites (none today) would compile.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=4);
            assert!(y <= 4);
            let z = r.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&z));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn covers_small_range() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
