#!/bin/bash
# Regenerates every table and figure of the PLDI'18 reproduction.
# Results land in results/*.txt. A sweep subset can be selected with
#   LOCMAP_APPS="mxm,fft,..." ./run_experiments.sh
set -u
cd "$(dirname "$0")"
mkdir -p results
BINS_FULL="table4 fig02 fig07 fig08 table3 fig12 fig13 fig14 fig15 multiprog"
BINS_SWEEP="fig09 fig10 fig11 fig16 fig17"
for b in $BINS_FULL; do
  echo "=== $b ==="
  cargo run --release -q -p locmap-bench --bin "$b" > "results/$b.txt" 2>/dev/null
done
# The sweeps multiply every benchmark by many configurations; run them on
# a representative subset unless LOCMAP_APPS overrides.
SUBSET="${LOCMAP_APPS:-barnes,water,fft,jacobi-3d,swim,mxm,hpccg,moldyn}"
for b in $BINS_SWEEP; do
  echo "=== $b (apps: $SUBSET) ==="
  LOCMAP_APPS="$SUBSET" cargo run --release -q -p locmap-bench --bin "$b" > "results/$b.txt" 2>/dev/null
done
echo done
