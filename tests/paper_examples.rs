//! Cross-crate reproduction of the paper's worked examples: Table 1,
//! Table 2, and the Figure 6 affinity vectors, driven end-to-end through
//! the public APIs.

use locmap_core::prelude::*;
use locmap_core::{
    compute_cai, compute_mai, AffinityInputs, AffinityVec, Cac, CacPolicy, HitModel, Mac,
    MacPolicy, MeasuredRates,
};
use locmap_loopir::IterationSpace;

/// Builds the Figure 5 loop with four arrays that land on four different
/// pages (hence four different MCs under page-interleaving).
fn figure5() -> (Program, IterationSpace, Vec<locmap_loopir::IterationSet>) {
    let mut p = Program::new("fig5");
    let n = 256u64; // one 2 KB page per array
    for name in ["A", "B", "C", "D"] {
        p.add_array(name, 8, n);
    }
    let mut nest = LoopNest::rectangular("main", &[n as i64]);
    nest.add_ref(locmap_loopir::ArrayId(0), AffineExpr::var(0, 1), Access::Write);
    for k in 1..4 {
        nest.add_ref(locmap_loopir::ArrayId(k), AffineExpr::var(0, 1), Access::Read);
    }
    let id = p.add_nest(nest);
    let space = IterationSpace::enumerate(p.nest(id), &p.params());
    let sets = space.split(space.len());
    (p, space, sets)
}

#[test]
fn table1_mai_with_and_without_cme() {
    let (p, space, sets) = figure5();
    let platform = Platform::paper_default();
    let data = DataEnv::new();
    let inputs = AffinityInputs::full(&p, &p.nests()[0], &space, &sets, &data);

    // Unrefined: all four refs contribute 0.25 each to their page's MC.
    let mai = compute_mai(&inputs, &platform, &locmap_core::AllMissModel);
    assert!((mai[0].mass() - 1.0).abs() < 1e-9);
    assert!(mai[0].0.iter().all(|&w| (w - 0.25).abs() < 1e-9));

    // Refined (§4): B and C hit in LLC, A and D miss. MAI keeps mass 0.5
    // and CAI gets the other 0.5 — the Table 1 "Realistic Scenario".
    let mut rates = MeasuredRates::zeroed(1, 4);
    rates.llc[0][1] = 1.0;
    rates.llc[0][2] = 1.0;
    let mai = compute_mai(&inputs, &platform, &rates);
    let cai = compute_cai(&inputs, &platform, &rates);
    assert!((mai[0].mass() - 0.5).abs() < 1e-9);
    assert!((cai[0].mass() - 0.5).abs() < 1e-9);
    assert!((rates.alpha(0, 4) - 0.5).abs() < 1e-9, "alpha must be 0.5");
    // Only two MCs receive miss weight.
    assert_eq!(mai[0].0.iter().filter(|&&w| w > 1e-9).count(), 2);
}

#[test]
fn table2_error_values_recomputed() {
    let platform = Platform::paper_default();
    let mac = Mac::compute(&platform, MacPolicy::NearestSet);

    // Column 2: MAI (0,0,0.5,0.5) → R8 with error exactly 0.
    let mai = AffinityVec(vec![0.0, 0.0, 0.5, 0.5]);
    assert!(mai.eta(mac.of(RegionId(7))).abs() < 1e-12);

    // Column 1: MAI (0.5,0.25,0.25,0): the minimum error is 0.125 (the
    // paper's printed value for its winner R5).
    let mai = AffinityVec(vec![0.5, 0.25, 0.25, 0.0]);
    let min = (0..9)
        .map(|r| mai.eta(mac.of(RegionId(r))))
        .fold(f64::INFINITY, f64::min);
    assert!((min - 0.125).abs() < 1e-12);

    // Column 3 (CME-refined, normalized direction): R5 and R6 tie as the
    // paper concludes.
    let mai = AffinityVec(vec![0.0, 0.25, 0.25, 0.0]);
    let e5 = mai.eta(mac.of(RegionId(4)));
    let e6 = mai.eta(mac.of(RegionId(5)));
    assert!((e5 - e6).abs() < 1e-12);
    for r in 0..9 {
        if r != 4 && r != 5 {
            assert!(mai.eta(mac.of(RegionId(r))) > e5);
        }
    }
}

#[test]
fn figure6_mac_and_cac_vectors() {
    let platform = Platform::paper_default();
    let mac = Mac::compute(&platform, MacPolicy::NearestSet);
    let cac = Cac::compute(&platform, CacPolicy::default());

    // Figure 6a spot checks (MC order: TL, TR, BR, BL).
    assert_eq!(mac.of(RegionId(0)).0, vec![1.0, 0.0, 0.0, 0.0]);
    assert_eq!(mac.of(RegionId(4)).0, vec![0.25, 0.25, 0.25, 0.25]);
    assert_eq!(mac.of(RegionId(7)).0, vec![0.0, 0.0, 0.5, 0.5]);

    // Figure 6c spot checks.
    let r1 = &cac.of(RegionId(0)).0;
    assert_eq!(r1[0], 0.5);
    assert_eq!(r1[1], 0.25);
    assert_eq!(r1[3], 0.25);
    let r5 = &cac.of(RegionId(4)).0;
    assert_eq!(r5[4], 0.5);
    for k in [1, 3, 5, 7] {
        assert_eq!(r5[k], 0.125);
    }
}
