//! Property-based invariants across crates, driven by proptest.

use locmap_core::prelude::*;
use locmap_core::{
    assign_private, balance_regions, place_in_regions, AffinityVec, Cac, CacPolicy, EtaMetric,
    Mac, MacPolicy, PlacementPolicy,
};
use locmap_noc::{
    link_target, route_faulty, route_xy, FaultCounts, MessageKind, Network, NocConfig, RouteError,
};
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = Mesh> {
    (2u16..=9, 2u16..=9).prop_map(|(w, h)| Mesh::try_new(w, h).unwrap())
}

fn arb_affinity(m: usize) -> impl Strategy<Value = AffinityVec> {
    proptest::collection::vec(0.0f64..1.0, m).prop_map(|v| AffinityVec(v).normalized())
}

proptest! {
    #[test]
    fn route_length_is_manhattan(mesh in arb_mesh(), a in 0u16..81, b in 0u16..81) {
        let n = mesh.node_count() as u16;
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        prop_assert_eq!(route_xy(mesh, a, b).len() as u32, mesh.distance(a, b));
    }

    #[test]
    fn network_send_at_least_zero_load(
        mesh in arb_mesh(),
        pairs in proptest::collection::vec((0u16..81, 0u16..81, 0u64..5000), 1..40)
    ) {
        let mut net = Network::new(NocConfig::default(), mesh);
        let n = mesh.node_count() as u16;
        for (a, b, t) in pairs {
            let (a, b) = (NodeId(a % n), NodeId(b % n));
            let kind = MessageKind::llc_response64();
            let zl = net.zero_load_latency(a, b, kind);
            let arrival = net.send(t, a, b, kind);
            prop_assert!(arrival - t >= zl, "latency below zero-load");
        }
    }

    #[test]
    fn eta_is_a_bounded_metric(a in arb_affinity(9), b in arb_affinity(9)) {
        let d = a.eta(&b);
        prop_assert!(d >= 0.0);
        // Normalized 9-vectors differ by at most 2 in L1 → eta ≤ 2/9.
        prop_assert!(d <= 2.0 / 9.0 + 1e-12);
        prop_assert!((a.eta(&b) - b.eta(&a)).abs() < 1e-12, "symmetry");
        prop_assert!(a.eta(&a) < 1e-12, "identity");
    }

    #[test]
    fn eta_triangle_inequality(
        a in arb_affinity(4),
        b in arb_affinity(4),
        c in arb_affinity(4)
    ) {
        prop_assert!(a.eta(&c) <= a.eta(&b) + b.eta(&c) + 1e-12);
    }

    #[test]
    fn assignment_always_picks_a_minimum(mai in proptest::collection::vec(arb_affinity(4), 1..20)) {
        let platform = Platform::paper_default();
        let mac = Mac::compute(&platform, MacPolicy::NearestSet);
        let picks = assign_private(&mai, &mac, EtaMetric::L1);
        for (v, r) in mai.iter().zip(&picks) {
            let chosen = v.eta(mac.of(*r));
            for alt in 0..9u16 {
                prop_assert!(chosen <= v.eta(mac.of(RegionId(alt))) + 1e-12);
            }
        }
    }

    #[test]
    fn balancing_preserves_sets_and_bounds_loads(
        seed_regions in proptest::collection::vec(0u16..9, 1..200)
    ) {
        let grid = RegionGrid::paper_default(Mesh::try_new(6, 6).unwrap());
        let mut assignment: Vec<RegionId> = seed_regions.iter().map(|&r| RegionId(r)).collect();
        let before = assignment.len();
        balance_regions(&mut assignment, &grid, &|_, _| 0.0);
        prop_assert_eq!(assignment.len(), before);
        let mut loads = vec![0usize; 9];
        for r in &assignment {
            loads[r.index()] += 1;
        }
        let lo = before / 9;
        let hi = lo + usize::from(!before.is_multiple_of(9));
        prop_assert!(loads.iter().all(|&c| c <= hi.max(1)), "loads {:?} exceed {}", loads, hi);
    }

    #[test]
    fn placement_respects_regions_and_balance(
        seed_regions in proptest::collection::vec(0u16..9, 1..150),
        seed in 0u64..1000
    ) {
        let grid = RegionGrid::paper_default(Mesh::try_new(6, 6).unwrap());
        let assignment: Vec<RegionId> = seed_regions.iter().map(|&r| RegionId(r)).collect();
        let placement = place_in_regions(&assignment, &grid, PlacementPolicy::Random { seed });
        for (s, core) in placement.iter().enumerate() {
            prop_assert_eq!(grid.region_of(*core), assignment[s]);
        }
        // Within every region, per-core loads differ by at most 1.
        for r in grid.regions() {
            let cores = grid.nodes_in(r);
            let loads: Vec<usize> = cores
                .iter()
                .map(|&c| placement.iter().filter(|&&p| p == c).count())
                .collect();
            let max = loads.iter().max().copied().unwrap_or(0);
            let min = loads.iter().min().copied().unwrap_or(0);
            prop_assert!(max - min <= 1, "region {} loads {:?}", r, loads);
        }
    }

    #[test]
    fn mac_cac_masses_are_unit(cols in 1u16..=6, rows in 1u16..=6) {
        let mesh = Mesh::try_new(6, 6).unwrap();
        let mut platform = Platform::paper_default();
        platform.regions = RegionGrid::try_new(mesh, cols, rows).unwrap();
        let mac = Mac::compute(&platform, MacPolicy::NearestSet);
        let cac = Cac::compute(&platform, CacPolicy::default());
        for v in mac.vectors() {
            prop_assert!((v.mass() - 1.0).abs() < 1e-9);
        }
        for v in cac.vectors() {
            prop_assert!((v.mass() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn faulty_routing_delivers_or_says_unreachable(
        mesh in arb_mesh(),
        seed in 0u64..10_000,
        links in 0usize..6,
        routers in 0usize..4,
        a in 0u16..81,
        b in 0u16..81,
    ) {
        let n = mesh.node_count() as u16;
        let (src, dst) = (NodeId(a % n), NodeId(b % n));
        let counts = FaultCounts { links, routers, ..FaultCounts::default() };
        let state = FaultPlan::random(seed, mesh, 4, counts).final_state();
        match route_faulty(mesh, src, dst, &state) {
            Ok(route) => {
                // The route is contiguous from src, ends exactly at dst
                // (never a wrong node), and every traversed link and
                // entered router is alive.
                let mut cur = src;
                for l in &route {
                    prop_assert_eq!(l.from, cur, "route not contiguous");
                    prop_assert!(state.link_alive(*l), "route uses dead link");
                    let t = link_target(mesh, *l);
                    cur = mesh.node_at(t.x, t.y);
                    prop_assert!(state.router_alive(cur), "route enters dead router");
                }
                prop_assert_eq!(cur, dst, "route delivered to the wrong node");
            }
            Err(RouteError::Unreachable { from, to }) => {
                prop_assert_eq!(from, src);
                prop_assert_eq!(to, dst);
            }
        }
    }

    #[test]
    fn faulted_simulation_is_bit_for_bit_deterministic(seed in 0u64..2_000) {
        use locmap_loopir::{Access, AffineExpr, DataEnv, LoopNest, Program};
        use locmap_sim::Simulator;

        let platform = Platform::paper_default();
        let counts = FaultCounts { links: 2, banks: 1, ..FaultCounts::default() };
        let state = FaultPlan::random(seed, platform.mesh, platform.mc_coords.len(), counts)
            .final_state();

        let mut p = Program::new("det");
        let elems = 4096u64;
        let arr = p.add_array("A", 8, elems);
        let mut nest = LoopNest::rectangular("n", &[(elems / 8) as i64]);
        nest.add_ref(arr, AffineExpr::var(0, 8), Access::Read);
        let id = p.add_nest(nest);
        let data = DataEnv::new();
        let compiler = Compiler::builder(platform.clone()).build().unwrap();
        let mapping = compiler.default_mapping(&p, id);

        // Two identical constructions must agree completely: both reject
        // the fault state with the same error, or produce identical runs.
        let run = || -> Result<(u64, u64, u64), String> {
            let mut sim = Simulator::builder(platform.clone()).build().unwrap();
            sim.set_faults(&state).map_err(|e| e.to_string())?;
            let r = sim.try_run_nest(&p, &mapping, &data).map_err(|e| e.to_string())?;
            Ok((r.cycles, r.network.total_latency, r.network.messages))
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn cache_total_accesses_conserved(lines in proptest::collection::vec(0u64..4096, 1..500)) {
        use locmap_mem::{Access, Cache, CacheConfig};
        let mut c = Cache::new(CacheConfig { size_bytes: 4096, ways: 4, line_bytes: 64 });
        for &l in &lines {
            c.access(l, Access::Read);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, lines.len() as u64);
        prop_assert!(c.resident_lines() <= 64);
    }
}

proptest! {
    /// The contract the batch engine is allowed to parallelize under: any
    /// worker count produces exactly the mappings a serial
    /// `Compiler::map_nest` loop would, and in-flight dedup means every
    /// distinct key is computed exactly once regardless of racing.
    #[test]
    fn batch_mapping_is_worker_count_invariant(
        sizes in proptest::collection::vec(512u64..4096, 1..5),
        repeats in 1usize..4,
        threads in 2usize..6,
    ) {
        let platform = Platform::paper_default();
        let apps: Vec<(Program, NestId)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mut p = Program::new(format!("app{i}"));
                let a = p.add_array("A", 8, n);
                let b = p.add_array("B", 8, n);
                let mut nest = LoopNest::rectangular("n", &[n as i64]);
                nest.add_ref(a, AffineExpr::var(0, 1), Access::Write);
                nest.add_ref(b, AffineExpr::var(0, 1), Access::Read);
                let id = p.add_nest(nest);
                (p, id)
            })
            .collect();
        let data = DataEnv::new();
        let reqs: Vec<MapRequest<'_>> = (0..repeats)
            .flat_map(|_| {
                apps.iter().map(|(p, id)| MapRequest { program: p, nest: *id, data: &data })
            })
            .collect();

        let compiler = Compiler::builder(platform.clone()).build().unwrap();
        let serial: Vec<NestMapping> =
            reqs.iter().map(|r| compiler.map_nest(r.program, r.nest, r.data)).collect();

        let one = MappingSession::builder(platform.clone()).threads(1).build().unwrap();
        let many = MappingSession::builder(platform).threads(threads).build().unwrap();
        let out1 = one.map_batch(&reqs);
        let outn = many.map_batch(&reqs);

        for ((s, a), b) in serial.iter().zip(&out1).zip(&outn) {
            prop_assert_eq!(s, &a.mapping, "1-worker session != serial map_nest");
            prop_assert_eq!(&a.mapping, &b.mapping, "worker count changed a mapping");
        }
        for stats in [one.cache_stats().mappings, many.cache_stats().mappings] {
            prop_assert_eq!(stats.hits + stats.misses, reqs.len() as u64);
            prop_assert_eq!(
                stats.misses as usize, stats.entries,
                "each distinct key must be computed exactly once"
            );
        }
    }

    /// Changing the fault state bumps the epoch: cached mappings become
    /// unreachable (the new mapping matches a degraded compiler exactly),
    /// CME estimates survive, and clearing faults restores the fault-free
    /// mapping bit for bit.
    #[test]
    fn fault_epoch_invalidates_mappings_and_spares_estimates(
        elems in 1024u64..4096,
        router in 0u16..36,
    ) {
        let platform = Platform::paper_default();
        let mut p = Program::new("epoch-prop");
        let a = p.add_array("A", 8, elems);
        let b = p.add_array("B", 8, elems);
        let mut nest = LoopNest::rectangular("n", &[elems as i64]);
        nest.add_ref(a, AffineExpr::var(0, 1), Access::Write);
        nest.add_ref(b, AffineExpr::var(0, 1), Access::Read);
        let id = p.add_nest(nest);
        let data = DataEnv::new();
        let req = [MapRequest { program: &p, nest: id, data: &data }];

        let mut session = MappingSession::builder(platform.clone()).build().unwrap();
        let clean = session.map_batch(&req)[0].mapping.clone();

        let state = FaultPlan::new(platform.mesh, platform.mc_coords.len())
            .dead_router(NodeId(router))
            .final_state();
        // Some routers cannot die without invalidating the platform; the
        // builder refusing them is its own (tested) contract — only live
        // degraded configurations exercise the epoch machinery.
        if session.set_faults(&state).is_ok() {
            prop_assert_eq!(session.epoch(), 1);

            let degraded = session.map_batch(&req);
            prop_assert!(!degraded[0].cache_hit, "epoch bump must invalidate the mapping");
            let dc = Compiler::builder(platform.clone()).faults(&state).build().unwrap();
            prop_assert_eq!(&degraded[0].mapping, &dc.map_nest(&p, id, &data));
            prop_assert_eq!(
                session.cache_stats().cme.hits, 1,
                "the CME estimate must survive the epoch bump"
            );

            session.clear_faults();
            let back = session.map_batch(&req);
            prop_assert!(!back[0].cache_hit);
            prop_assert_eq!(&back[0].mapping, &clean, "fault-free mapping restored bit for bit");
        }
    }
}

// Totality of the online resilience driver: an arbitrary timed fault
// timeline either drives the run to completion (with every adopted remap
// verifier-gated inside the degradation ladder) or surfaces a typed
// `HealError` — never a panic, never a silently wrong tally.
proptest! {
    #[test]
    fn heal_run_is_total_over_random_timelines(
        seed in 0u64..5_000,
        links in 0usize..=2,
        routers in 0usize..=2,
        mcs in 0usize..=1,
        transient in 0u8..2,
        horizon_pct in 10u64..=150,
    ) {
        use locmap_bench::heal::{heal_run, HealConfig};
        use locmap_bench::Experiment;
        use locmap_core::{DegradationLevel, RecoveryAction};
        use locmap_loopir::{Access, AffineExpr, DataEnv, LoopNest, Program};
        use locmap_workloads::{Table3Info, Workload};
        use std::sync::OnceLock;

        fn stream() -> Workload {
            let mut p = Program::new("heal-prop");
            let elems = 1u64 << 14;
            let a = p.add_array("A", 8, elems);
            let mut nest = LoopNest::rectangular("scan", &[(elems / 8) as i64]).work(24);
            nest.add_ref(a, AffineExpr::var(0, 8), Access::Read);
            p.add_nest(nest);
            Workload {
                name: "heal-prop",
                program: p,
                data: DataEnv::new(),
                irregular: false,
                timing_iters: 1,
                table3: Table3Info::default(),
            }
        }

        let w = stream();
        let exp = Experiment::paper_default(LlcOrg::Private);
        static CLEAN: OnceLock<u64> = OnceLock::new();
        let clean = *CLEAN.get_or_init(|| {
            let empty = FaultPlan::new(exp.platform.mesh, exp.platform.mc_coords.len());
            heal_run(&stream(), &exp, &empty, &HealConfig::default()).unwrap().result.cycles
        });

        let counts = FaultCounts { links, routers, mcs, ..FaultCounts::default() };
        let plan = locmap_noc::FaultPlan::random_timed(
            seed,
            exp.platform.mesh,
            exp.platform.mc_coords.len(),
            counts,
            clean * horizon_pct / 100,
            transient == 1,
        );
        prop_assert!(plan.validate().is_ok(), "random_timed must self-validate");

        match heal_run(&w, &exp, &plan, &HealConfig::default()) {
            Ok(out) => {
                let s = &out.summary;
                prop_assert!(out.result.cycles > 0);
                prop_assert_eq!(out.result.resilience.as_ref(), Some(s));
                prop_assert!(s.recovery_overhead_cycles >= s.migration_cost_cycles);
                prop_assert!(s.transient_retries <= s.faults_seen);
                prop_assert!(s.remaps <= s.faults_seen);
                let remap_events = out
                    .trace
                    .iter()
                    .filter(|e| e.action == RecoveryAction::Remapped)
                    .count();
                prop_assert_eq!(remap_events as u32, s.remaps, "trace disagrees with tally");
                if s.faults_seen == 0 {
                    prop_assert!(out.trace.is_empty());
                    prop_assert_eq!(s.degradation, DegradationLevel::None);
                    prop_assert_eq!(out.result.cycles, clean, "fault-free heal must match clean run");
                } else {
                    prop_assert!(out.result.cycles >= clean, "recovery cannot beat the clean run");
                    prop_assert!(s.mttr_cycles > 0.0);
                }
            }
            // Typed degradation verdicts are an acceptable outcome for a
            // hostile timeline; formatting them must not panic either.
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}

// Cooperative cancellation extends the PR 2 serial-equivalence contract:
// a batch under a CancelToken/Budget either returns the bit-identical
// result of the uncancelled run or a typed abort — never a divergent
// mapping, and never a poisoned memo cache.
proptest! {
    #[test]
    fn cancelled_batch_is_all_or_typed_abort(
        sizes in proptest::collection::vec(512u64..4096, 1..4),
        repeats in 1usize..3,
        threads in 1usize..4,
        cancel_after in 0u64..40,
        use_budget in 0u8..2,
        budget_units in 1u64..20_000,
    ) {
        use locmap_noc::LocmapError;

        let platform = Platform::paper_default();
        let apps: Vec<(Program, NestId)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mut p = Program::new(format!("cx{i}"));
                let a = p.add_array("A", 8, n);
                let b = p.add_array("B", 8, n);
                let mut nest = LoopNest::rectangular("n", &[n as i64]);
                nest.add_ref(a, AffineExpr::var(0, 1), Access::Write);
                nest.add_ref(b, AffineExpr::var(0, 1), Access::Read);
                let id = p.add_nest(nest);
                (p, id)
            })
            .collect();
        let data = DataEnv::new();
        let reqs: Vec<MapRequest<'_>> = (0..repeats)
            .flat_map(|_| {
                apps.iter().map(|(p, id)| MapRequest { program: p, nest: *id, data: &data })
            })
            .collect();

        let reference = MappingSession::builder(platform.clone()).threads(1).build().unwrap();
        let expected = reference.map_batch(&reqs);

        let session =
            MappingSession::builder(platform.clone()).threads(threads).build().unwrap();
        let ctl = if use_budget == 1 {
            RunControl::new(CancelToken::new(), Budget::unlimited().with_work_units(budget_units))
        } else {
            RunControl::new(CancelToken::cancel_after_polls(cancel_after), Budget::unlimited())
        };

        match session.map_batch_ctl(&reqs, &ctl) {
            Ok(out) => {
                // An uninterrupted run must be bit-identical to the
                // uncancelled serial reference — no third outcome.
                for (e, o) in expected.iter().zip(&out) {
                    prop_assert_eq!(&e.mapping, &o.mapping, "abort machinery changed a mapping");
                }
            }
            Err(LocmapError::Cancelled { completed, total }) => {
                prop_assert_eq!(use_budget, 0, "a budget abort must not report Cancelled");
                prop_assert!(completed <= total, "progress {completed}/{total} overflows");
            }
            Err(LocmapError::DeadlineExceeded { spent_units, .. }) => {
                prop_assert_eq!(use_budget, 1, "a token abort must not report DeadlineExceeded");
                prop_assert!(
                    spent_units >= budget_units,
                    "abort before the budget was exhausted"
                );
            }
            Err(e) => prop_assert!(false, "unexpected error variant: {e}"),
        }

        // Whatever happened, the memo caches are never poisoned: an
        // unlimited retry on the same session matches the reference
        // bit for bit.
        let retry = session.map_batch(&reqs);
        for (e, o) in expected.iter().zip(&retry) {
            prop_assert_eq!(&e.mapping, &o.mapping, "abort poisoned a memo cache");
        }
    }
}

// Soundness of the static verifier (locmap-verify): the verifier accepts
// everything the compiler produces, and rejects targeted corruptions with
// the exact documented diagnostic code.
proptest! {
    #[test]
    fn verifier_accepts_every_compiler_mapping(
        elems in 512u64..4096,
        shared in 0u8..2,
        fault_seed in 0u64..500,
        faulty in 0u8..2,
    ) {
        use locmap_verify::{VerifyConfig, VerifyMapping};

        let llc = if shared == 1 { LlcOrg::SharedSNuca } else { LlcOrg::Private };
        let platform = Platform::paper_default_with(llc);
        let mut p = Program::new("verify-prop");
        let a = p.add_array("A", 8, elems);
        let b = p.add_array("B", 8, elems);
        let mut nest = LoopNest::rectangular("n", &[elems as i64]);
        nest.add_ref(a, AffineExpr::var(0, 1), Access::Write);
        nest.add_ref(b, AffineExpr::var(0, 1), Access::Read);
        let id = p.add_nest(nest);
        let data = DataEnv::new();

        let builder = Compiler::builder(platform.clone());
        let compiler = if faulty == 1 {
            let counts = FaultCounts { links: 1, routers: 1, mcs: 1, ..FaultCounts::default() };
            let state = FaultPlan::random(fault_seed, platform.mesh, platform.mc_coords.len(), counts)
                .final_state();
            match Compiler::builder(platform.clone()).faults(&state).build() {
                Ok(c) => c,
                // Some random fault states invalidate the platform outright
                // (e.g. no alive region); the builder rejecting them is its
                // own tested contract.
                Err(_) => builder.build().unwrap(),
            }
        } else {
            builder.build().unwrap()
        };
        let mapping = compiler.map_nest(&p, id, &data);
        // Topology is fault-independent; skip its O(n^2) enumeration here
        // (it has its own tests) and run the nest/vector/mapping passes.
        let cfg = VerifyConfig { routing: false, ..VerifyConfig::default() };
        let sink = compiler.verify_mapping(&p, id, &data, &mapping, &cfg);
        prop_assert!(sink.diagnostics().is_empty(), "verifier rejected a compiler mapping:\n{}", sink.report());
    }

    #[test]
    fn verifier_rejects_targeted_corruptions(
        elems in 1024u64..4096,
        pick in 0usize..1000,
        kind in 0u8..3,
    ) {
        use locmap_verify::{Code, VerifyConfig, VerifyMapping};

        // Private LLC: the mapping cost is purely MAI-based, so the
        // "worst region" probe below is exact.
        let platform = Platform::paper_default_with(LlcOrg::Private);
        let mut p = Program::new("corrupt-prop");
        let a = p.add_array("A", 8, elems);
        let mut nest = LoopNest::rectangular("n", &[elems as i64]);
        nest.add_ref(a, AffineExpr::var(0, 1), Access::Write);
        let id = p.add_nest(nest);
        let data = DataEnv::new();
        let compiler = Compiler::builder(platform).build().unwrap();
        let mut mapping = compiler.map_nest(&p, id, &data);
        let k = pick % mapping.sets.len();
        let cfg = VerifyConfig { routing: false, ..VerifyConfig::default() };

        match kind {
            0 => {
                // Dropping a set leaves its iterations uncovered.
                mapping.sets.remove(k);
                mapping.regions.remove(k);
                mapping.assignment.remove(k);
                let sink = compiler.verify_mapping(&p, id, &data, &mapping, &cfg);
                prop_assert!(sink.has(Code::COVERAGE_GAP), "{}", sink.report());
                prop_assert!(!sink.is_clean());
            }
            1 => {
                // Duplicating a set double-assigns its iterations.
                let dup = mapping.sets[k];
                mapping.sets.insert(k + 1, dup);
                mapping.regions.insert(k + 1, mapping.regions[k]);
                mapping.assignment.insert(k + 1, mapping.assignment[k]);
                let sink = compiler.verify_mapping(&p, id, &data, &mapping, &cfg);
                prop_assert!(sink.has(Code::SET_OVERLAP), "{}", sink.report());
                prop_assert!(!sink.is_clean());
            }
            _ => {
                // Moving a set to its worst region breaks the η argmin.
                let eta = compiler.options().eta;
                let mai_n = mapping.mai[k].clone().normalized();
                let worst = compiler
                    .platform()
                    .regions
                    .regions()
                    .max_by(|&x, &y| {
                        mai_n.eta_with(compiler.mac().of(x), eta)
                            .total_cmp(&mai_n.eta_with(compiler.mac().of(y), eta))
                    })
                    .unwrap();
                let best_eta = compiler
                    .platform()
                    .regions
                    .regions()
                    .map(|r| mai_n.eta_with(compiler.mac().of(r), eta))
                    .fold(f64::INFINITY, f64::min);
                // Only a strictly worse region constitutes a corruption;
                // flat affinity vectors can tie across all regions.
                let original = mapping.clone();
                if mai_n.eta_with(compiler.mac().of(worst), eta) > best_eta + 1e-9
                    && mapping.regions[k] != worst
                {
                    mapping.regions[k] = worst;
                    mapping.assignment[k] = compiler.platform().regions.nodes_in(worst)[0];
                    prop_assert!(mapping.regions != original.regions);
                    let sink = compiler.verify_mapping(&p, id, &data, &mapping, &cfg);
                    prop_assert!(
                        sink.has(Code::ETA_NOT_MINIMAL) || sink.has(Code::STALE_MAPPING),
                        "{}", sink.report()
                    );
                    prop_assert!(!sink.is_clean());
                }
            }
        }
    }
}
