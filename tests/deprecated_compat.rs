//! Back-compat coverage for the deprecated constructors.
//!
//! `Compiler::new`, `Compiler::new_degraded`, `Simulator::new`,
//! `Mesh::new`, `RegionGrid::new` and the `InspectorRetryPolicy` type alias
//! are deprecated shims over the builder, `try_new`, and
//! `resilience::RetryPolicy` APIs, but they are still public: code written
//! against the
//! old API must keep compiling and must produce bit-identical results to
//! the replacements it is steered toward. This file is the one place in
//! the workspace allowed to call them — everything else builds under
//! `-D deprecated` in CI.

#![allow(deprecated)]

use locmap_core::prelude::*;
use locmap_core::MappingOptions;
use locmap_sim::prelude::*;

fn fig5_program() -> (Program, NestId) {
    let mut p = Program::new("compat");
    let a = p.add_array("A", 8, 4096);
    let b = p.add_array("B", 8, 4096);
    let mut nest = LoopNest::rectangular("n", &[4096]);
    nest.add_ref(a, AffineExpr::var(0, 1), Access::Write);
    nest.add_ref(b, AffineExpr::var(0, 1), Access::Read);
    let id = p.add_nest(nest);
    (p, id)
}

#[test]
fn compiler_new_matches_builder() {
    let (p, id) = fig5_program();
    let platform = Platform::paper_default();
    let old = Compiler::new(platform.clone(), MappingOptions::default());
    let new = Compiler::builder(platform).build().unwrap();
    assert_eq!(old.map_nest(&p, id, &DataEnv::new()), new.map_nest(&p, id, &DataEnv::new()));
}

#[test]
fn compiler_new_degraded_matches_builder_with_faults() {
    let (p, id) = fig5_program();
    let platform = Platform::paper_default();
    let state = FaultPlan::new(platform.mesh, platform.mc_coords.len())
        .dead_router(NodeId(7))
        .final_state();
    let old =
        Compiler::new_degraded(platform.clone(), MappingOptions::default(), &state).unwrap();
    let new = Compiler::builder(platform).faults(&state).build().unwrap();
    assert_eq!(old.map_nest(&p, id, &DataEnv::new()), new.map_nest(&p, id, &DataEnv::new()));
}

#[test]
fn simulator_new_matches_builder() {
    let (p, id) = fig5_program();
    let platform = Platform::paper_default();
    let compiler = Compiler::builder(platform.clone()).build().unwrap();
    let mapping = compiler.map_nest(&p, id, &DataEnv::new());

    let mut old = Simulator::new(platform.clone(), SimConfig::default());
    let mut new = Simulator::builder(platform).build().unwrap();
    let (r_old, r_new) =
        (old.run_nest(&p, &mapping, &DataEnv::new()), new.run_nest(&p, &mapping, &DataEnv::new()));
    assert_eq!(r_old.cycles, r_new.cycles);
    assert_eq!(r_old.network.total_latency, r_new.network.total_latency);
}

#[test]
fn inspector_retry_policy_alias_matches_retry_policy() {
    // The inspector's private retry knobs were generalized into
    // `locmap_core::resilience::RetryPolicy`; the old name survives one
    // release as a deprecated alias and must stay behaviorally identical.
    let old = locmap_core::resilience::InspectorRetryPolicy::default();
    let new = locmap_core::resilience::RetryPolicy::default();
    assert_eq!(old.max_retries, new.max_retries);
    assert_eq!(old.divergence_threshold, new.divergence_threshold);
    for attempt in 0..4 {
        assert_eq!(old.backoff_cycles(attempt, 42), new.backoff_cycles(attempt, 42));
    }
}

#[test]
fn panicking_constructors_match_try_new() {
    assert_eq!(Mesh::new(6, 6), Mesh::try_new(6, 6).unwrap());
    let mesh = Mesh::try_new(6, 6).unwrap();
    assert_eq!(RegionGrid::new(mesh, 3, 3), RegionGrid::try_new(mesh, 3, 3).unwrap());
}

#[test]
#[should_panic]
fn mesh_new_still_panics_on_invalid_sizes() {
    let _ = Mesh::new(0, 6);
}
