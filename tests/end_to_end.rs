//! End-to-end integration: workloads → compiler → simulator → metrics,
//! across LLC organizations, schemes and platforms.

use locmap_bench::{evaluate, Experiment, Scheme};
use locmap_sim::prelude::*;
use locmap_sim::{knl_platform, KnlMode};
use locmap_workloads::{build, Scale, Table3Info, Workload};

/// A deliberately MC-structured stream: one access per cache line, so
/// every iteration set's misses target exactly one memory controller.
fn structured(n_pow: u32) -> Workload {
    let mut p = Program::new("structured");
    let elems = 1u64 << n_pow;
    let a = p.add_array("A", 8, elems);
    let n = (elems / 8) as i64;
    let mut nest = LoopNest::rectangular("scan", &[n]).work(24);
    nest.add_ref(a, AffineExpr::var(0, 8), Access::Read);
    p.add_nest(nest);
    Workload {
        name: "structured",
        program: p,
        data: DataEnv::new(),
        irregular: false,
        timing_iters: 2,
        table3: Table3Info::default(),
    }
}

#[test]
fn location_aware_wins_on_private_llc() {
    let out = evaluate(
        &structured(18),
        &Experiment::paper_default(LlcOrg::Private),
        Scheme::LocationAware,
    );
    assert!(out.net_reduction_pct() > 10.0, "got {:.1}%", out.net_reduction_pct());
    assert!(out.exec_improvement_pct() > 0.0);
}

#[test]
fn shared_llc_line_interleave_is_mapping_neutral() {
    // Physics of line-granularity S-NUCA: any contiguous region larger
    // than banks×line wraps every bank, so no computation placement can
    // shorten core→bank routes for a pure stream. LA must not *hurt*.
    let out = evaluate(
        &structured(18),
        &Experiment::paper_default(LlcOrg::SharedSNuca),
        Scheme::LocationAware,
    );
    assert!(out.net_reduction_pct() > -5.0, "got {:.1}%", out.net_reduction_pct());
}

#[test]
fn location_aware_wins_on_shared_llc_with_page_interleave() {
    // With page-granularity bank interleaving (a Figure 11 combination),
    // each iteration set's lines share a bank and CAI becomes actionable.
    use locmap_mem::{AddrMap, AddrMapConfig, Interleave};
    let mut exp = Experiment::paper_default(LlcOrg::SharedSNuca);
    exp.platform.addr_map = AddrMap::new(AddrMapConfig {
        llc_interleave: Interleave::Page,
        ..AddrMapConfig::paper_default(36)
    });
    let out = evaluate(&structured(18), &exp, Scheme::LocationAware);
    assert!(out.net_reduction_pct() > 5.0, "got {:.1}%", out.net_reduction_pct());
}

#[test]
fn shared_llc_baseline_has_more_network_traffic_than_private() {
    // The paper's explanation for larger shared-LLC savings: S-NUCA sends
    // every L1 miss over the network.
    let w = structured(17);
    let shared = evaluate(&w, &Experiment::paper_default(LlcOrg::SharedSNuca), Scheme::Default);
    let private = evaluate(&w, &Experiment::paper_default(LlcOrg::Private), Scheme::Default);
    assert!(shared.base_latency > 0.0 && private.base_latency > 0.0);
    // Shared runs strictly slower at the same work: extra bank traversals.
    assert!(shared.base_cycles > private.base_cycles);
}

#[test]
fn irregular_workload_runs_inspector_and_improves_latency() {
    let w = build("moldyn", Scale::new(0.4));
    let out = evaluate(&w, &Experiment::paper_default(LlcOrg::Private), Scheme::LocationAware);
    assert!(out.overhead_cycles > 0, "inspector overhead must be charged");
    assert!(
        out.net_reduction_pct() > 0.0,
        "moldyn latency reduction {:.1}%",
        out.net_reduction_pct()
    );
}

#[test]
fn oracle_never_needs_overhead() {
    let w = build("nbf", Scale::new(0.3));
    let out = evaluate(&w, &Experiment::paper_default(LlcOrg::SharedSNuca), Scheme::Oracle);
    assert_eq!(out.overhead_cycles, 0);
    assert!(out.opt_cycles > 0);
}

#[test]
fn hardware_scheme_produces_valid_schedule() {
    let w = build("fft", Scale::new(0.25));
    let out = evaluate(&w, &Experiment::paper_default(LlcOrg::Private), Scheme::Hardware);
    assert!(out.opt_cycles > 0);
    assert_eq!(out.overhead_cycles, 0);
}

#[test]
fn layout_schemes_run_and_report() {
    let w = build("mxm", Scale::new(0.3));
    let exp = Experiment::paper_default(LlcOrg::Private);
    let lo = evaluate(&w, &exp, Scheme::LayoutOnly);
    let both = evaluate(&w, &exp, Scheme::LayoutPlusLa);
    assert!(lo.opt_cycles > 0 && both.opt_cycles > 0);
}

#[test]
fn knl_modes_differ_and_optimization_helps_all_to_all() {
    let w = structured(17);
    let nid = w.program.nest_ids().next().unwrap();
    let mut cycles = Vec::new();
    for mode in [KnlMode::AllToAll, KnlMode::Quadrant, KnlMode::Snc4] {
        let platform = knl_platform(mode);
        let compiler = Compiler::builder(platform.clone()).build().unwrap();
        let mapping = compiler.default_mapping(&w.program, nid);
        let mut sim = Simulator::builder(platform).build().unwrap();
        let r = sim.run_nest(&w.program, &mapping, &w.data);
        cycles.push(r.cycles);
    }
    // Modes genuinely change behavior.
    assert!(cycles.iter().any(|&c| c != cycles[0]), "{cycles:?}");
}

#[test]
fn mesh_sizes_other_than_6x6_work_end_to_end() {
    use locmap_mem::{AddrMap, AddrMapConfig};
    use locmap_noc::{McPlacement, Mesh, RegionGrid};
    let mesh = Mesh::try_new(4, 4).unwrap();
    let platform = Platform {
        mesh,
        regions: RegionGrid::try_new(mesh, 2, 2).unwrap(),
        mc_coords: McPlacement::Corners.coords(mesh),
        addr_map: AddrMap::new(AddrMapConfig::paper_default(16)),
        llc: LlcOrg::SharedSNuca,
    };
    let w = structured(15);
    let nid = w.program.nest_ids().next().unwrap();
    let compiler = Compiler::builder(platform.clone()).build().unwrap();
    let mapping = compiler.map_nest(&w.program, nid, &w.data);
    let mut sim = Simulator::builder(platform).build().unwrap();
    let r = sim.run_nest(&w.program, &mapping, &w.data);
    assert!(r.cycles > 0);
    assert!(mapping.assignment.iter().all(|c| c.index() < 16));
}
