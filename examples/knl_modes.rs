//! KNL-style cluster modes: how address-hashing policies interact with
//! location-aware mapping (the paper's Figure 16 scenario, one workload).
//!
//! ```sh
//! cargo run --release -p locmap-bench --example knl_modes
//! ```

use locmap_sim::prelude::*;
use locmap_sim::{knl_platform, KnlMode};
use locmap_workloads::{build, Scale};

fn main() {
    let w = build("moldyn", Scale::default());
    let nest_id = w.program.nest_ids().next().expect("workload has a nest");

    let mut reference = None;
    for mode in [KnlMode::AllToAll, KnlMode::Quadrant, KnlMode::Snc4] {
        let platform = knl_platform(mode);
        let compiler = Compiler::builder(platform.clone()).build().unwrap();
        for optimized in [false, true] {
            let mapping = if optimized {
                compiler.map_nest(&w.program, nest_id, &w.data)
            } else {
                compiler.default_mapping(&w.program, nest_id)
            };
            let mut sim = Simulator::builder(platform.clone()).build().unwrap();
            sim.run_nest(&w.program, &mapping, &w.data); // warm
            let r = sim.run_nest(&w.program, &mapping, &w.data);
            let reference_cycles = *reference.get_or_insert(r.cycles);
            println!(
                "{:>9?} {}: {:>9} cycles ({:+.1}% vs original all-to-all), net latency {:.1}",
                mode,
                if optimized { "optimized" } else { "original " },
                r.cycles,
                100.0 * (reference_cycles as f64 - r.cycles as f64) / reference_cycles as f64,
                r.network.avg_latency()
            );
        }
    }
}
