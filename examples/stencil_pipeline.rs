//! A regular application end-to-end: 3-D heat diffusion.
//!
//! Shows the full compile-time pipeline of the paper's Figure 4 —
//! dependence testing, reuse classification, CME hit estimation, the four
//! affinity vectors, region assignment, balancing, placement — and then
//! validates the schedule on the simulator.
//!
//! ```sh
//! cargo run --release -p locmap-bench --example stencil_pipeline
//! ```

use locmap_cme::{CmeConfig, CmeEstimator};
use locmap_core::{
    compute_cai, compute_mai, AffinityInputs, Cac, CacPolicy, CmeModel, Mac, MacPolicy,
};
use locmap_loopir::{DependenceTest, IterationSpace, ReuseAnalysis};
use locmap_sim::prelude::*;
use locmap_workloads::{build, Scale};

fn main() {
    let w = build("jacobi-3d", Scale::default());
    let program: &Program = &w.program;
    let nest = &program.nests()[0];
    let platform = Platform::paper_default();

    // --- Front end: is the nest parallel, and how does it reuse data?
    let deps = DependenceTest::new(program, nest);
    println!("parallel-safe: {}", deps.parallel_loop_is_safe());
    let reuse = ReuseAnalysis::analyze(program, nest, 64);
    for (i, k) in reuse.kinds().iter().enumerate() {
        println!("  ref {i}: {k:?}");
    }

    // --- CME: which accesses stay on chip?
    let space = IterationSpace::enumerate(nest, &program.params());
    let sets = space.split_by_fraction(0.0025);
    let est = CmeEstimator::new(CmeConfig::default()).estimate(
        program,
        nest,
        &space,
        &sets,
        &DataEnv::new(),
    );
    println!(
        "CME: mean LLC hit probability {:.2}, alpha(set 0) = {:.2}",
        est.mean_hit_probability(),
        est.alpha(0)
    );

    // --- The four affinity vectors for the first iteration set.
    let model = CmeModel::new(est);
    let inputs = AffinityInputs::full(program, nest, &space, &sets, &w.data);
    let mai = compute_mai(&inputs, &platform, &model);
    let cai = compute_cai(&inputs, &platform, &model);
    let mac = Mac::compute(&platform, MacPolicy::NearestSet);
    let cac = Cac::compute(&platform, CacPolicy::default());
    println!("MAI(set 0) = {}", mai[0]);
    println!("CAI(set 0) = {}", cai[0]);
    println!("MAC(R1)    = {}", mac.of(locmap_noc::RegionId(0)));
    println!("CAC(R5)    = {}", cac.of(locmap_noc::RegionId(4)));

    // --- Full pass + simulation.
    let compiler = Compiler::builder(platform.clone()).build().unwrap();
    let nest_id = program.nest_ids().next().expect("program has a nest");
    let optimized = compiler.map_nest(program, nest_id, &w.data);
    let default = compiler.default_mapping(program, nest_id);

    let mut sim = Simulator::builder(platform.clone()).build().unwrap();
    sim.run_nest(program, &default, &w.data); // warm
    let base = sim.run_nest(program, &default, &w.data);
    let mut sim = Simulator::builder(platform).build().unwrap();
    sim.run_nest(program, &optimized, &w.data); // warm
    let opt = sim.run_nest(program, &optimized, &w.data);

    println!(
        "steady state: network latency {:.1} -> {:.1} (-{:.1}%), cycles {} -> {} (-{:.1}%)",
        base.network.avg_latency(),
        opt.network.avg_latency(),
        RunResult::net_latency_reduction_pct(&base, &opt),
        base.cycles,
        opt.cycles,
        RunResult::exec_improvement_pct(&base, &opt)
    );
}
