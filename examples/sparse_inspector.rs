//! An irregular application end-to-end: sparse matrix–vector product with
//! the inspector–executor runtime.
//!
//! The compiler cannot see through `x[col[r,k]]` at compile time, so pass 1
//! of the timing loop runs under the default mapping while the inspector
//! observes which banks/MCs serve each iteration set; the executor then
//! runs the remaining passes under the runtime-derived mapping.
//!
//! ```sh
//! cargo run --release -p locmap-bench --example sparse_inspector
//! ```

use locmap_core::{Inspector, InspectorCostModel};
use locmap_sim::prelude::*;
use locmap_workloads::{build, Scale};

fn main() {
    let w = build("hpccg", Scale::default());
    let platform = Platform::paper_default();
    let compiler = Compiler::builder(platform.clone()).build().unwrap();
    let nest_id = w.program.nest_ids().next().expect("workload has a nest");

    // Compile time: the index array is opaque — the pass defers.
    let compile_time = compiler.map_nest(&w.program, nest_id, &DataEnv::new());
    println!("compile-time mapping needs inspector: {}", compile_time.needs_inspector);

    // Timing iteration 1: default mapping, profiled.
    let default = compiler.default_mapping(&w.program, nest_id);
    let mut sim = Simulator::builder(platform.clone()).build().unwrap();
    let profile = sim.run_nest(&w.program, &default, &w.data);
    println!(
        "profiling pass: {} cycles, LLC hit rate {:.2}",
        profile.cycles,
        1.0 - profile.l2.miss_ratio()
    );

    // Inspector: build MAI/CAI/alpha from observations, map, account cost.
    let inspector = Inspector::new(&compiler, InspectorCostModel::default());
    let report = inspector.run(&w.program, nest_id, &w.data, &profile.measured);
    println!(
        "inspector: derived mapping for {} sets, overhead {} cycles",
        report.mapping.sets.len(),
        report.overhead_cycles
    );

    // Executor passes: run the derived mapping (after a rewarm pass).
    sim.run_nest(&w.program, &report.mapping, &w.data); // rewarm
    let executor = sim.run_nest(&w.program, &report.mapping, &w.data);

    // Reference: what the remaining passes would cost without the switch.
    let mut ref_sim = Simulator::builder(platform).build().unwrap();
    ref_sim.run_nest(&w.program, &default, &w.data);
    let base = ref_sim.run_nest(&w.program, &default, &w.data);

    println!(
        "steady state: network latency {:.1} -> {:.1} (-{:.1}%), cycles {} -> {}",
        base.network.avg_latency(),
        executor.network.avg_latency(),
        RunResult::net_latency_reduction_pct(&base, &executor),
        base.cycles,
        executor.cycles
    );
    let t = w.timing_iters as u64;
    let base_total = base.cycles * t;
    let opt_total = base.cycles + report.overhead_cycles + executor.cycles * (t - 1);
    println!(
        "over {} timing iterations: {} -> {} cycles ({:+.1}%)",
        t,
        base_total,
        opt_total,
        100.0 * (base_total as f64 - opt_total as f64) / base_total as f64
    );
}
