//! Quickstart: map a parallel loop onto a 6×6 manycore and measure the
//! effect of location-aware placement.
//!
//! ```sh
//! cargo run --release -p locmap-bench --example quickstart
//! ```

use locmap_sim::prelude::*;

fn main() {
    // 1. Describe the computation: for i { A[i] = B[i] + C[i] + D[i] }
    //    (the paper's Figure 5 example, at a size that generates traffic).
    let mut program = Program::new("quickstart");
    let n = 200_000u64;
    let a = program.add_array("A", 8, n);
    let b = program.add_array("B", 8, n);
    let c = program.add_array("C", 8, n);
    let d = program.add_array("D", 8, n);
    let mut nest = LoopNest::rectangular("main", &[n as i64]).work(24);
    nest.add_ref(a, AffineExpr::var(0, 1), Access::Write);
    nest.add_ref(b, AffineExpr::var(0, 1), Access::Read);
    nest.add_ref(c, AffineExpr::var(0, 1), Access::Read);
    nest.add_ref(d, AffineExpr::var(0, 1), Access::Read);
    let nest_id = program.add_nest(nest);

    // 2. Describe the machine (6x6 mesh, 9 regions, 4 corner MCs, S-NUCA).
    let platform = Platform::paper_default();

    // 3. Run the location-aware mapping pass.
    let compiler = Compiler::builder(platform.clone()).build().unwrap();
    let data = DataEnv::new();
    let optimized = compiler.map_nest(&program, nest_id, &data);
    let default = compiler.default_mapping(&program, nest_id);
    println!(
        "mapped {} iteration sets; load balancer moved {} ({:.1}%)",
        optimized.sets.len(),
        optimized.balance.moved,
        optimized.balance.fraction_moved() * 100.0
    );

    // 4. Simulate both schedules on the same machine model.
    let mut sim = Simulator::builder(platform.clone()).build().unwrap();
    let base = sim.run_nest(&program, &default, &data);
    let mut sim = Simulator::builder(platform).build().unwrap();
    let opt = sim.run_nest(&program, &optimized, &data);

    println!(
        "default : {} cycles, avg network latency {:.1}, avg hops {:.2}",
        base.cycles,
        base.network.avg_latency(),
        base.network.avg_hops()
    );
    println!(
        "locmap  : {} cycles, avg network latency {:.1}, avg hops {:.2}",
        opt.cycles,
        opt.network.avg_latency(),
        opt.network.avg_hops()
    );
    println!(
        "=> network latency -{:.1}%, execution time -{:.1}%",
        RunResult::net_latency_reduction_pct(&base, &opt),
        RunResult::exec_improvement_pct(&base, &opt)
    );
}
